package waitornot

import (
	"context"
	"fmt"
	"strings"

	"waitornot/internal/bfl"
	"waitornot/internal/core"
	"waitornot/internal/event"
	"waitornot/internal/metrics"
	"waitornot/internal/shard"
)

// MergeMode selects how a KindSharded run folds shard models into the
// global model.
type MergeMode int

const (
	// MergeSync barriers every MergeCadence shard rounds: all shards
	// publish, the models are FedAvg-folded, every shard adopts.
	MergeSync MergeMode = iota
	// MergeAsync merges on each shard's arrival, staleness-weighted;
	// only the arriving shard adopts — fast shards never wait.
	MergeAsync
)

// String implements fmt.Stringer ("sync" / "async").
func (m MergeMode) String() string { return m.internal().String() }

func (m MergeMode) internal() shard.MergeMode {
	if m == MergeAsync {
		return shard.MergeAsync
	}
	return shard.MergeSync
}

// ShardRoundInfo is one shard-level aggregation round of a KindSharded
// run: the shard's slowest-peer policy wait, its cumulative wait, and
// the round's decision-commit instant on the shared virtual clock.
type ShardRoundInfo struct {
	Round        int
	Policy       string
	MaxWaitMs    float64
	CumWaitMs    float64
	VirtualMs    float64
	MeanIncluded float64
}

// ShardSummary is one shard's complete record: its slice of the fleet,
// its ledger, its rounds, and its inner per-peer result.
type ShardSummary struct {
	Index   int
	Peers   int
	Backend string
	Seed    uint64
	// Samples is the shard's summed training-set size — its FedAvg
	// weight in every cross-shard merge.
	Samples int
	Rounds  []ShardRoundInfo
	// Policies lists the wait policy used in each merge epoch (a single
	// entry when the adaptive controller is off).
	Policies []string
	// FinalAccuracy is the shard's last published model on the held-out
	// global evaluation set; CumWaitMs its total policy wait.
	FinalAccuracy float64
	CumWaitMs     float64
	// PeerRounds[peer][round-1] is the shard's inner per-peer record —
	// the same shape a flat decentralized run reports.
	PeerRounds [][]RoundInfo
	// Chain summarizes the shard's own ledger footprint.
	Chain ChainSummary
}

// MergePoint records one cross-shard merge: the global model's
// accuracy on the evaluation set at the fleet's cumulative policy wait
// (the trade-off study's time axis) and virtual instant.
type MergePoint struct {
	Epoch int
	// Shard is the arriving shard for async merges, -1 for sync
	// barriers.
	Shard    int
	Mode     string
	Included int
	Accuracy float64
	WaitMs   float64
	// VirtualMs is the merge instant on the shared clock.
	VirtualMs float64
}

// ShardedReport is the sharded hierarchy's output: per-shard round
// records and ledger footprints, the cross-shard merge trajectory, and
// the global model's accuracy curve on the fleet's wait axis.
type ShardedReport struct {
	// InitialAccuracy is the shared starting model on the global
	// evaluation set (the t=0 point); FinalAccuracy the last merge's
	// global model.
	InitialAccuracy float64
	FinalAccuracy   float64
	Shards          []ShardSummary
	Merges          []MergePoint
	// HorizonMs is the virtual instant the last shard finished.
	HorizonMs float64
}

// RunSharded executes the sharded multi-aggregator hierarchy. It is a
// thin wrapper over the Experiment API; use New(...).Run(ctx) for
// cancellation and the streaming event layer.
func RunSharded(opts Options) (*ShardedReport, error) {
	res, err := New(opts, WithKind(KindSharded)).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Sharded, nil
}

// sharded lowers the public options to the engine's hierarchy config.
// The adaptive ladder comes from the experiment's policies (nil =
// DefaultPolicies for the smallest shard).
func (o Options) sharded(policies []Policy) shard.Config {
	o = o.withDefaults()
	cfg := shard.Config{
		Base:       o.decentralized(),
		Shards:     o.Shards,
		Backends:   o.ShardBackends,
		MergeEvery: o.MergeCadence,
		Mode:       o.MergeMode.internal(),
		Adaptive:   o.AdaptiveShards,
	}
	cfg.Base.EvalAllCombos = false // combo tables are a flat-run concern
	if o.AdaptiveShards {
		if policies == nil {
			shards := cfg.Shards
			if shards == 0 {
				shards = 2
			}
			peers := cfg.Base.Peers
			if peers == 0 {
				peers = 3
			}
			policies = DefaultPolicies(peers / shards)
		}
		ladder := make([]core.WaitPolicy, len(policies))
		for i, p := range policies {
			ladder[i] = p.internal()
		}
		cfg.Policies = ladder
	}
	return cfg
}

// runShardedExperiment is the engine-facing sharded runner behind
// Experiment.Run.
func runShardedExperiment(ctx context.Context, opts Options, policies []Policy, sink event.Sink) (*ShardedReport, error) {
	cfg := opts.sharded(policies)
	cfg.Events = sink
	res, err := shard.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep := &ShardedReport{
		InitialAccuracy: res.InitialAccuracy,
		FinalAccuracy:   res.FinalAccuracy,
		HorizonMs:       res.HorizonMs,
	}
	for _, s := range res.Shards {
		sum := ShardSummary{
			Index:         s.Index,
			Peers:         s.Peers,
			Backend:       s.Backend,
			Seed:          s.Seed,
			Samples:       s.Samples,
			Policies:      s.Policies,
			FinalAccuracy: s.FinalAccuracy,
			CumWaitMs:     s.CumWaitMs,
			Chain:         chainSummary(s.Flat.Chain),
		}
		for _, ra := range s.Rounds {
			sum.Rounds = append(sum.Rounds, ShardRoundInfo{
				Round:        ra.Round,
				Policy:       ra.Policy,
				MaxWaitMs:    ra.MaxWaitMs,
				CumWaitMs:    ra.CumWaitMs,
				VirtualMs:    ra.VirtualMs,
				MeanIncluded: ra.MeanIncluded,
			})
		}
		sum.PeerRounds = make([][]RoundInfo, len(s.Flat.Rounds))
		for p, rounds := range s.Flat.Rounds {
			for _, rs := range rounds {
				sum.PeerRounds[p] = append(sum.PeerRounds[p], RoundInfo{
					Round:          rs.Round,
					Included:       rs.Included,
					WaitMs:         rs.WaitMs,
					ChosenCombo:    rs.ChosenCombo,
					ChosenAccuracy: rs.ChosenAccuracy,
					Rejected:       rs.Rejected,
				})
			}
		}
		rep.Shards = append(rep.Shards, sum)
	}
	for _, m := range res.Merges {
		rep.Merges = append(rep.Merges, MergePoint{
			Epoch:     m.Epoch,
			Shard:     m.Shard,
			Mode:      m.Mode,
			Included:  m.Included,
			Accuracy:  m.Accuracy,
			WaitMs:    m.WaitMs,
			VirtualMs: m.VirtualMs,
		})
	}
	return rep, nil
}

// chainSummary lifts the engine's chain footprint into the public
// report shape.
func chainSummary(c bfl.ChainStats) ChainSummary {
	return ChainSummary{
		Blocks:         c.Blocks,
		Txs:            c.Txs,
		GasUsed:        c.GasUsed,
		Bytes:          c.Bytes,
		Submissions:    c.Submissions,
		Decisions:      c.Decisions,
		VerifyRejected: c.VerifyRejected,
	}
}

// Headline reduces the report to the trade-off study's three headline
// metrics — the final global accuracy, and the mean per-shard-round
// policy wait and included-model count — making sharded cells directly
// comparable to (and sweepable alongside) the other kinds.
func (r *ShardedReport) Headline() (finalAccuracy, meanWaitMs, meanIncluded float64) {
	finalAccuracy = r.FinalAccuracy
	var wait, included float64
	n := 0
	for _, s := range r.Shards {
		for _, ra := range s.Rounds {
			wait += ra.MaxWaitMs
			included += ra.MeanIncluded
			n++
		}
	}
	if n > 0 {
		meanWaitMs = wait / float64(n)
		meanIncluded = included / float64(n)
	}
	return finalAccuracy, meanWaitMs, meanIncluded
}

// TimeToAccuracyMs returns the fleet's cumulative policy wait at which
// the global model first reached target — walking the merge trajectory
// from the t=0 initial point — or -1 if no merge got there. The wait
// axis (not the raw virtual clock) is the trade-off study's time axis,
// so sharded cells compare against flat policies on equal terms.
func (r *ShardedReport) TimeToAccuracyMs(target float64) float64 {
	if r.InitialAccuracy >= target {
		return 0
	}
	for _, m := range r.Merges {
		if m.Accuracy >= target {
			return m.WaitMs
		}
	}
	return -1
}

// Table renders every shard's round schedule.
func (r *ShardedReport) Table() string {
	tab := metrics.NewTable(
		"Sharded hierarchy: per-shard rounds on the shared virtual clock",
		"shard", "backend", "round", "policy", "wait (ms)", "cum wait (ms)", "t (ms)", "models")
	for _, s := range r.Shards {
		for _, ra := range s.Rounds {
			tab.Add(fmt.Sprint(s.Index), s.Backend, fmt.Sprint(ra.Round), ra.Policy,
				fmt.Sprintf("%.1f", ra.MaxWaitMs), fmt.Sprintf("%.1f", ra.CumWaitMs),
				fmt.Sprintf("%.0f", ra.VirtualMs), fmt.Sprintf("%.2f", ra.MeanIncluded))
		}
	}
	return tab.ASCII()
}

// MergeTable renders the cross-shard merge trajectory.
func (r *ShardedReport) MergeTable() string {
	tab := metrics.NewTable(
		"Cross-shard merges: global model on the fleet wait axis",
		"epoch", "mode", "shard", "models", "accuracy", "wait (ms)", "t (ms)")
	for _, m := range r.Merges {
		who := "all"
		if m.Shard >= 0 {
			who = fmt.Sprint(m.Shard)
		}
		tab.Add(fmt.Sprint(m.Epoch), m.Mode, who, fmt.Sprint(m.Included),
			metrics.Acc(m.Accuracy), fmt.Sprintf("%.1f", m.WaitMs), fmt.Sprintf("%.0f", m.VirtualMs))
	}
	return tab.ASCII()
}

// CSV renders the merge trajectory machine-readably.
func (r *ShardedReport) CSV() string {
	tab := metrics.NewTable("", "epoch", "mode", "shard", "included", "accuracy", "wait_ms", "virtual_ms")
	for _, m := range r.Merges {
		tab.Add(fmt.Sprint(m.Epoch), m.Mode, fmt.Sprint(m.Shard), fmt.Sprint(m.Included),
			fmt.Sprintf("%g", m.Accuracy), fmt.Sprintf("%g", m.WaitMs), fmt.Sprintf("%g", m.VirtualMs))
	}
	return tab.CSV()
}

// Summary renders a one-paragraph digest for CLI output.
func (r *ShardedReport) Summary() string {
	var b strings.Builder
	backends := make([]string, len(r.Shards))
	for i, s := range r.Shards {
		backends[i] = s.Backend
	}
	fmt.Fprintf(&b, "sharded hierarchy: %d shards (%s), %d merges, accuracy %s -> %s over %.1f virtual ms",
		len(r.Shards), strings.Join(backends, ", "), len(r.Merges),
		metrics.Acc(r.InitialAccuracy), metrics.Acc(r.FinalAccuracy), r.HorizonMs)
	return b.String()
}
