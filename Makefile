# Build, verify, and benchmark the waitornot reproduction.
#
#   make ci        everything the repository gates on: build + vet +
#                  tests + the race-detector smoke over the parallel
#                  execution engine + a bench-json smoke snapshot.

GO ?= go

# bench-json writes a dated perf snapshot so the repo's performance
# trajectory accumulates as machine-readable files (one per day;
# override BENCH_JSON to pick the path).
BENCH_JSON ?= BENCH_$(shell date +%Y-%m-%d).json

.PHONY: build vet test test-race bench bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race smoke: the internal/par pool itself, plus short parallel runs
# of the decentralized experiment, the trade-off sweep, and the
# simulators (TestRaceSmoke* in race_test.go).
test-race:
	$(GO) test -race ./internal/par/
	$(GO) test -race -run 'TestRaceSmoke' .

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Perf snapshot: run the sequential-vs-parallel speedup suite and the
# consensus-backend ladder once and record name / ns-op / speedup-x as
# JSON (two steps so a bench failure fails the target instead of
# vanishing into a pipe; the intermediate is removed on success and
# failure alike).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel|BenchmarkBackend' -benchtime 1x . > .bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench.out; \
	    status=$$?; rm -f .bench.out; exit $$status

ci: build vet test test-race bench-json
