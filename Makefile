# Build, verify, and benchmark the waitornot reproduction.
#
#   make ci        everything the repository gates on: build + vet +
#                  tests under the coverage ratchet + the race-detector
#                  smoke over the parallel execution engine + the fuzz
#                  smoke over the chain codec and mempool + the
#                  campaign crash-recovery smoke (SIGKILL + resume) + a
#                  bench-json smoke snapshot gated by bench-guard (the
#                  hardware-aware parallel-speedup floor).

GO ?= go

# bench-json writes a dated perf snapshot so the repo's performance
# trajectory accumulates as machine-readable files (one per day;
# override BENCH_JSON to pick the path).
BENCH_JSON ?= BENCH_$(shell date +%Y-%m-%d).json

# The coverage ratchet: cover fails if total statement coverage drops
# below this. The gating value is recorded in .github/workflows/ci.yml
# (env on the make step); raise it there as coverage grows.
COVER_MIN ?= 77.5
COVER_OUT ?= cover.out

# Fuzz smoke budget per target (a real campaign runs
# `go test -fuzz <target> ./internal/chain/` open-ended).
FUZZTIME ?= 5s

.PHONY: build vet test cover test-race fuzz-smoke campaign-smoke bench bench-json bench-guard profile ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Coverage-gated test run: the full suite once, with -coverprofile,
# failing if the total slips under the ratchet. ci uses this as its
# single (non-race) test pass.
cover:
	$(GO) test -coverprofile=$(COVER_OUT) ./...
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage $$total% (ratchet: >= $(COVER_MIN)%)"; \
	awk -v got=$$total -v min=$(COVER_MIN) 'BEGIN { exit got+0 < min+0 ? 1 : 0 }' || \
	    { echo "coverage ratchet failed: $$total% < $(COVER_MIN)%"; exit 1; }

# Fuzz smoke: a few seconds per fuzz target, enough to catch shallow
# regressions in the chain codec, the mempool, the weight-payload
# codec, and the pbft model verifier on every CI run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzChainCodec -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -run '^$$' -fuzz FuzzMempoolSubmit -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -run '^$$' -fuzz FuzzPayloadCodec -fuzztime $(FUZZTIME) ./internal/nn/
	$(GO) test -run '^$$' -fuzz FuzzPBFTVerify -fuzztime $(FUZZTIME) ./internal/ledger/

# Campaign smoke: the crash-recovery acceptance test end to end — a
# tiny campaign run in a child process, SIGKILLed the instant its log
# holds a durable record, then resumed and diffed byte-for-byte
# against the uninterrupted sweep's tables (campaign_test.go).
campaign-smoke:
	$(GO) test -run 'TestCampaignSIGKILLRecovery|TestCampaignResumeAfterCancel|TestCampaignResumeTornTail' -count=1 .

# Race smoke: the internal/par pool itself, plus short parallel runs
# of the decentralized experiment, the trade-off sweep, and the
# simulators (TestRaceSmoke* in race_test.go).
test-race:
	$(GO) test -race ./internal/par/
	$(GO) test -race -run 'TestRaceSmoke' .

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Perf snapshot: run the sequential-vs-parallel speedup suite, the
# consensus-backend ladder, the ledger hot path at model scale, the
# weight-codec alloc probe, the async-vs-sync schedule race, the
# sharded-hierarchy scaling sweep, and the aggregation-step alloc
# probe once and record name / ns-op / speedup-x as JSON (two steps so
# a bench failure fails the target instead of vanishing into a pipe;
# the intermediate is removed on success and failure alike).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel|BenchmarkSubsampled|BenchmarkBackend|BenchmarkLedger|BenchmarkWeightCodec|BenchmarkAsync|BenchmarkShard|BenchmarkFedAvg|BenchmarkCampaign' -benchtime 1x . > .bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench.out; \
	    status=$$?; rm -f .bench.out; exit $$status

# Perf tripwires, both read from the snapshot: (1) speedup — fail if
# BenchmarkParallelScaling rows at >= 16 peers and >= 4 workers fall
# below 1.5x, but only on rows whose worker count fits the recording
# machine's cores (a 4-way pool on a 1-core runner is
# oversubscription, not a regression; the guard passes vacuously there
# and says so); (2) consensus overhead — fail if poa or pbft ns/op
# exceeds 2.5x the instant backend's, the ledger hot-path ratchet.
bench-guard:
	$(GO) run ./cmd/benchguard -file $(BENCH_JSON)

# CPU + allocation profiles of the parallel scaling workload, for
# chasing pool overhead and allocation churn (DESIGN.md §11 was found
# this way: go tool pprof -top cpu.prof / -sample_index=alloc_space
# mem.prof).
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelScaling/peers=4/procs=4' -benchtime 1x \
	    -cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof, mem.prof — inspect with: $(GO) tool pprof -top cpu.prof"

ci: build vet cover test-race fuzz-smoke campaign-smoke bench-json bench-guard
