# Build, verify, and benchmark the waitornot reproduction.
#
#   make ci        everything the repository gates on: build + vet +
#                  tests + the race-detector smoke over the parallel
#                  execution engine.

GO ?= go

.PHONY: build vet test test-race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race smoke: the internal/par pool itself, plus short parallel runs
# of the decentralized experiment, the trade-off sweep, and the
# simulators (TestRaceSmoke* in race_test.go).
test-race:
	$(GO) test -race ./internal/par/
	$(GO) test -race -run 'TestRaceSmoke' .

bench:
	$(GO) test -bench . -benchtime 1x ./...

ci: build vet test test-race
