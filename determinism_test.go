// Determinism regression tests for the parallel execution engine: a
// run with Parallelism: 8 must be byte-identical to the sequential
// run (Parallelism: 1) on every parallelized path — per-peer training
// in the decentralized experiment and the vanilla baseline, the
// combination search, and the per-policy trade-off loop. Reports are
// compared both structurally and as serialized bytes (golden
// equality), so any scheduling-dependent float or ordering drift
// fails loudly.
package waitornot_test

import (
	"reflect"
	"testing"

	"waitornot"
	"waitornot/internal/bfl"
	"waitornot/internal/nn"
	"waitornot/internal/testutil"
)

// detOpts is the shared tiny-but-nontrivial configuration (see
// internal/testutil).
func detOpts() waitornot.Options { return testutil.TinyOptions() }

// goldenEqual asserts a and b serialize to identical bytes.
func goldenEqual(t *testing.T, label string, a, b any) {
	t.Helper()
	testutil.GoldenEqual(t, label, a, b)
}

func TestDecentralizedParallelMatchesSequential(t *testing.T) {
	seqOpts := detOpts()
	seqOpts.Parallelism = 1
	seq, err := waitornot.RunDecentralized(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := detOpts()
	parOpts.Parallelism = 8
	par, err := waitornot.RunDecentralized(parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel decentralized report differs from sequential")
	}
	goldenEqual(t, "decentralized", seq, par)
}

// TestBFLResultParallelMatchesSequential checks golden equality on the
// engine-level Result, not just the facade report: combo grids, round
// stats, and the on-chain footprint (same blocks mined, same gas).
// Config and wall time are run metadata, not results, and are
// normalized before comparing.
func TestBFLResultParallelMatchesSequential(t *testing.T) {
	cfg := bfl.Config{
		Model:         nn.ModelSimpleNN,
		Peers:         3,
		Rounds:        2,
		Seed:          7,
		TrainPerPeer:  90,
		SelectionSize: 40,
		TestPerPeer:   50,
		EvalAllCombos: true,
	}
	run := func(parallelism int) *bfl.Result {
		c := cfg
		c.Parallelism = parallelism
		res, err := bfl.RunDecentralized(c)
		if err != nil {
			t.Fatal(err)
		}
		res.Config = bfl.Config{}
		res.TrainWallTime = 0
		return res
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel bfl.Result differs from sequential")
	}
	goldenEqual(t, "bfl.Result", seq, par)
}

func TestVanillaParallelMatchesSequential(t *testing.T) {
	seqOpts := detOpts()
	seqOpts.Parallelism = 1
	seq, err := waitornot.RunVanilla(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := detOpts()
	parOpts.Parallelism = 8
	par, err := waitornot.RunVanilla(parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel vanilla report differs from sequential")
	}
	goldenEqual(t, "vanilla", seq, par)
}

func TestTradeoffParallelMatchesSequential(t *testing.T) {
	policies := waitornot.DefaultPolicies(3)
	policies = append(policies, waitornot.Policy{Kind: waitornot.KOrTimeout, K: 2, TimeoutMs: 200})
	run := func(parallelism int) *waitornot.TradeoffReport {
		o := detOpts()
		o.Parallelism = parallelism
		o.StragglerFactor = []float64{1, 1, 4}
		rep, err := waitornot.RunTradeoff(o, policies)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel trade-off report differs from sequential")
	}
	goldenEqual(t, "tradeoff", seq, par)
}

// TestSweepsParallelDeterministic pins the always-parallel sweep
// helpers: repeated calls must reproduce the same points exactly.
func TestSweepsParallelDeterministic(t *testing.T) {
	a := waitornot.ThroughputVsPeers([]int{4, 8, 16}, 3)
	b := waitornot.ThroughputVsPeers([]int{4, 8, 16}, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ThroughputVsPeers not reproducible")
	}
	policies := []waitornot.Policy{
		{Kind: waitornot.WaitAll},
		{Kind: waitornot.FirstK, K: 2},
		{Kind: waitornot.Timeout, TimeoutMs: 4000},
	}
	s1 := waitornot.RoundLatencyByPolicy(4, policies, 3)
	s2 := waitornot.RoundLatencyByPolicy(4, policies, 3)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("RoundLatencyByPolicy not reproducible")
	}
	if s1[0].Policy != "wait-all" || s1[1].Policy != "first-2" {
		t.Fatalf("stats landed out of policy order: %+v", s1)
	}
}
